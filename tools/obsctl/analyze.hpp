// Offline analysis of flight-recorder dumps (see src/obs/recorder.hpp).
//
// Loads dumps from all nodes of a run, merges both streams (trace spans and
// journal events) into one timeline, groups span records into per-operation
// lifecycles, and derives:
//
//  * per-operation timelines, sorted on the total order the operations were
//    delivered in (parsed from the TotemDeliver carrier coordinates);
//  * per-stage latency breakdowns — client→order (ClientSend to the token
//    visit that sequenced the message), order→deliver (token visit to first
//    totally-ordered delivery) and deliver→reply (first delivery to the
//    reply reaching the client) — with exact percentiles;
//  * invariant audits over the recorded history: every invoked operation is
//    delivered and answered exactly once per live replica, no operation is
//    executed twice on one node, retries map to suppressed duplicates,
//    membership views converge, and divergence convictions are consistent
//    across nodes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/recorder.hpp"

namespace eternal::obsctl {

using obs::FlightRecord;

/// One operation's reconstructed lifecycle across every node in the dumps.
struct OpTimeline {
  obs::OpRef op;
  std::uint64_t trace_id = 0;

  // Stage timestamps, 0 = not observed in the dumps.
  std::uint64_t client_send = 0;
  std::uint64_t client_span = 0;   // span id of the ClientSend record
  std::uint64_t first_order = 0;   // token visit that sequenced the send
  std::uint64_t first_deliver = 0; // earliest totally-ordered delivery
  std::uint64_t reply_deliver = 0; // reply reached the waiting client

  // Total-order position (parsed from the TotemDeliver carrier detail).
  std::uint64_t carrier_epoch = 0;
  std::uint64_t carrier_seq = 0;

  std::size_t retransmits = 0;
  std::size_t suppressions = 0;  // duplicate-suppression records, any kind
  std::size_t read_skips = 0;    // passive backups ignoring a read-only op
  std::size_t resync_defers = 0; // unsynced replicas buffering a delivery
  bool failover_retry = false;
  std::string group;  // target group (parsed from delivery/exec details)
  std::map<std::uint32_t, std::size_t> exec_starts;     // node -> count
  /// node -> (earliest, latest) ExecStart time — the audit exempts repeat
  /// executions separated by a state transfer at that node (a tentative
  /// secondary-component execution discarded by the resync).
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> exec_span;
  std::map<std::uint32_t, std::size_t> deliver_counts;  // node -> count
  std::map<std::uint32_t, std::uint64_t> first_deliver_at;  // node -> time

  std::vector<FlightRecord> records;  // this op's records, time-sorted
};

struct AuditViolation {
  std::string check;  // "lost-op", "duplicate-execution", ...
  std::string detail;
  std::string str() const { return check + ": " + detail; }
};

class Analysis {
 public:
  /// Load one dump file and merge its records. Throws std::runtime_error on
  /// a missing or corrupt file.
  void add_file(const std::string& path);
  void add_records(const std::vector<FlightRecord>& recs);

  std::size_t files() const noexcept { return files_; }
  std::size_t record_count() const noexcept { return records_.size(); }
  const std::vector<FlightRecord>& records() const noexcept {
    return records_;
  }

  /// The run seed parsed from the RunMeta journal stamp ("seed=N"), if the
  /// dumps carried one. Soak/bench clusters emit it at t=0, so violation
  /// reports can name the exact schedule that produced them.
  bool has_run_seed() { finalize(); return has_seed_; }
  std::uint64_t run_seed() { finalize(); return seed_; }

  /// Per-operation lifecycles, sorted on the total order (operations never
  /// seen in a TotemDeliver sort after the ordered ones, by first record).
  const std::vector<OpTimeline>& timelines();

  /// Human-readable per-operation timeline listing.
  std::string timeline_report();
  /// Per-stage latency breakdown (exact percentiles over all operations).
  std::string latency_report();
  /// Run every invariant audit; empty = history is consistent.
  std::vector<AuditViolation> audit();

 private:
  void finalize();

  std::size_t files_ = 0;
  bool finalized_ = false;
  bool has_seed_ = false;
  std::uint64_t seed_ = 0;
  std::vector<FlightRecord> records_;
  std::vector<OpTimeline> timelines_;
};

}  // namespace eternal::obsctl

// obsctl — offline flight-recorder analyzer.
//
//   obsctl timeline <dump.bin|dir>...   per-operation timelines in total order
//   obsctl latency  <dump.bin|dir>...   per-stage latency percentiles
//   obsctl audit    <dump.bin|dir>...   invariant audit; exit 1 on violation
//   obsctl events   <dump.bin|dir>...   raw journal-event stream, time-sorted
//
// Directories are scanned (non-recursively) for *.bin dumps, sorted by name.
// `events` prints the membership/recovery/checkpoint narrative the audits
// consume — the first thing to read when an audit convicts a run.
//
// For `audit`, each *directory* argument is its own run: operation ids are
// deterministic per run, so dumps of different runs must never be merged
// into one analysis. Loose file arguments form one additional run. Each
// run is audited independently and reported with its RunMeta seed; the exit
// code is 1 if any run has a violation. `timeline` and `latency` keep the
// historic merge-everything behaviour (one run's dumps from several nodes).
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: obsctl <timeline|latency|audit|events> <dump.bin|dir>...\n");
  return 2;
}

std::vector<std::string> dir_files(const std::string& dir) {
  std::vector<std::string> found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      found.push_back(entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::vector<std::string> expand(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (fs::is_directory(arg)) {
      const auto found = dir_files(arg);
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(arg);
    }
  }
  return files;
}

/// One audit run: a label (directory name or "<files>") and its dumps.
struct Run {
  std::string label;
  std::vector<std::string> files;
};

std::vector<Run> split_runs(const std::vector<std::string>& args) {
  std::vector<Run> runs;
  Run loose{"<files>", {}};
  for (const std::string& arg : args) {
    if (fs::is_directory(arg)) {
      runs.push_back({arg, dir_files(arg)});
    } else {
      loose.files.push_back(arg);
    }
  }
  if (!loose.files.empty()) runs.push_back(std::move(loose));
  return runs;
}

int load_into(eternal::obsctl::Analysis& analysis,
              const std::vector<std::string>& files) {
  for (const std::string& file : files) {
    try {
      analysis.add_file(file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "obsctl: %s\n", e.what());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd != "timeline" && cmd != "latency" && cmd != "audit" &&
      cmd != "events") {
    return usage();
  }
  const std::vector<std::string> args{argv + 2, argv + argc};

  if (cmd == "events") {
    const std::vector<std::string> files = expand(args);
    if (files.empty()) {
      std::fprintf(stderr, "obsctl: no dump files found\n");
      return 2;
    }
    eternal::obsctl::Analysis analysis;
    if (int rc = load_into(analysis, files)) return rc;
    for (const auto& rec : analysis.records()) {
      if (rec.stream != eternal::obsctl::FlightRecord::Stream::Journal) {
        continue;
      }
      std::printf("%s\n", rec.str().c_str());
    }
    return 0;
  }

  if (cmd == "timeline" || cmd == "latency") {
    const std::vector<std::string> files = expand(args);
    if (files.empty()) {
      std::fprintf(stderr, "obsctl: no dump files found\n");
      return 2;
    }
    eternal::obsctl::Analysis analysis;
    if (int rc = load_into(analysis, files)) return rc;
    std::fputs((cmd == "timeline" ? analysis.timeline_report()
                                  : analysis.latency_report())
                   .c_str(),
               stdout);
    return 0;
  }

  const std::vector<Run> runs = split_runs(args);
  std::size_t total_files = 0;
  for (const Run& run : runs) total_files += run.files.size();
  if (total_files == 0) {
    std::fprintf(stderr, "obsctl: no dump files found\n");
    return 2;
  }

  std::size_t total_violations = 0;
  for (const Run& run : runs) {
    if (run.files.empty()) {
      std::printf("obsctl audit: %s: no dump files\n", run.label.c_str());
      continue;
    }
    eternal::obsctl::Analysis analysis;
    if (int rc = load_into(analysis, run.files)) return rc;
    const auto violations = analysis.audit();
    total_violations += violations.size();
    std::string seed = analysis.has_run_seed()
                           ? "seed " + std::to_string(analysis.run_seed())
                           : "seed unknown";
    std::printf("obsctl audit: %s (%s): %zu files, %zu records, %zu "
                "operations, %zu violation(s)\n",
                run.label.c_str(), seed.c_str(), analysis.files(),
                analysis.record_count(), analysis.timelines().size(),
                violations.size());
    for (const auto& v : violations) {
      std::printf("  %s\n", v.str().c_str());
    }
  }
  return total_violations == 0 ? 0 : 1;
}

// obsctl — offline flight-recorder analyzer.
//
//   obsctl timeline <dump.bin|dir>...   per-operation timelines in total order
//   obsctl latency  <dump.bin|dir>...   per-stage latency percentiles
//   obsctl audit    <dump.bin|dir>...   invariant audit; exit 1 on violation
//
// Directories are scanned (non-recursively) for *.bin dumps, sorted by name.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: obsctl <timeline|latency|audit> <dump.bin|dir>...\n");
  return 2;
}

std::vector<std::string> expand(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (fs::is_directory(arg)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file() && entry.path().extension() == ".bin") {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(arg);
    }
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd != "timeline" && cmd != "latency" && cmd != "audit") {
    return usage();
  }

  const std::vector<std::string> files =
      expand({argv + 2, argv + argc});
  if (files.empty()) {
    std::fprintf(stderr, "obsctl: no dump files found\n");
    return 2;
  }

  eternal::obsctl::Analysis analysis;
  for (const std::string& file : files) {
    try {
      analysis.add_file(file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "obsctl: %s\n", e.what());
      return 2;
    }
  }

  if (cmd == "timeline") {
    std::fputs(analysis.timeline_report().c_str(), stdout);
    return 0;
  }
  if (cmd == "latency") {
    std::fputs(analysis.latency_report().c_str(), stdout);
    return 0;
  }

  const auto violations = analysis.audit();
  std::printf("obsctl audit: %zu files, %zu records, %zu operations, %zu "
              "violation(s)\n",
              analysis.files(), analysis.record_count(),
              analysis.timelines().size(), violations.size());
  for (const auto& v : violations) {
    std::printf("  %s\n", v.str().c_str());
  }
  return violations.empty() ? 0 : 1;
}

#include "analyze.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/stats.hpp"

namespace eternal::obsctl {

namespace {

struct OpKey {
  std::uint64_t parent_epoch = 0;
  std::uint64_t parent_seq = 0;
  std::uint64_t op_seq = 0;

  auto operator<=>(const OpKey&) const = default;
};

OpKey key_of(const obs::OpRef& op) {
  return {op.parent_epoch, op.parent_seq, op.op_seq};
}

/// Parse "carrier=E:S" out of a TotemDeliver detail string.
bool parse_carrier(const std::string& detail, std::uint64_t& epoch,
                   std::uint64_t& seq) {
  const auto pos = detail.find("carrier=");
  if (pos == std::string::npos) return false;
  const char* p = detail.c_str() + pos + 8;
  char* endp = nullptr;
  epoch = std::strtoull(p, &endp, 10);
  if (endp == p || *endp != ':') return false;
  p = endp + 1;
  seq = std::strtoull(p, &endp, 10);
  return endp != p;
}

/// Parse "members=[a, b, c]" out of a view-install detail string.
bool parse_members(const std::string& detail, std::vector<std::uint32_t>& out) {
  const auto pos = detail.find("members=[");
  if (pos == std::string::npos) return false;
  const auto close = detail.find(']', pos);
  if (close == std::string::npos) return false;
  out.clear();
  const char* p = detail.c_str() + pos + 9;
  const char* stop = detail.c_str() + close;
  while (p < stop) {
    if (*p < '0' || *p > '9') {
      ++p;
      continue;
    }
    char* endp = nullptr;
    out.push_back(static_cast<std::uint32_t>(std::strtoul(p, &endp, 10)));
    p = endp;
  }
  return true;
}

std::string first_token(const std::string& s) {
  const auto pos = s.find(' ');
  return pos == std::string::npos ? s : s.substr(0, pos);
}

// Extracts the value of a "key=value" field from an event detail line, or
// an empty string when the field is absent.
std::string parse_field(const std::string& detail, const std::string& key) {
  const std::string needle = key + '=';
  auto pos = detail.find(needle);
  if (pos == std::string::npos) return {};
  pos += needle.size();
  const auto end = detail.find(' ', pos);
  return detail.substr(pos, end == std::string::npos ? std::string::npos
                                                     : end - pos);
}

std::string members_str(const std::vector<std::uint32_t>& members) {
  std::string out = "[";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(members[i]);
  }
  return out + "]";
}

}  // namespace

void Analysis::add_file(const std::string& path) {
  add_records(obs::FlightRecorder::load(path));
  ++files_;
}

void Analysis::add_records(const std::vector<FlightRecord>& recs) {
  records_.insert(records_.end(), recs.begin(), recs.end());
  finalized_ = false;
}

void Analysis::finalize() {
  if (finalized_) return;
  finalized_ = true;

  std::stable_sort(records_.begin(), records_.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.node != b.node) return a.node < b.node;
                     return a.span_id < b.span_id;
                   });

  // Token-visit sends are recorded at the ordering layer, which knows the
  // frame's trace context but not the operation inside the opaque payload:
  // match them back to operations via (trace id, parent span).
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
      token_visits;  // (trace, parent span) -> earliest visit time
  std::map<OpKey, OpTimeline> ops;

  for (const FlightRecord& r : records_) {
    if (r.stream == FlightRecord::Stream::Journal &&
        r.journal_kind() == obs::EventKind::RunMeta && !has_seed_) {
      const std::string detail = r.detail_str();
      const auto pos = detail.find("seed=");
      if (pos != std::string::npos) {
        char* endp = nullptr;
        const char* p = detail.c_str() + pos + 5;
        const std::uint64_t s = std::strtoull(p, &endp, 10);
        if (endp != p) {
          has_seed_ = true;
          seed_ = s;
        }
      }
    }
    if (r.stream != FlightRecord::Stream::Span) continue;
    if (!r.op.valid()) {
      if (r.span_event() == obs::SpanEvent::TokenVisitSend &&
          r.trace_id != 0) {
        auto [it, inserted] = token_visits.try_emplace(
            {r.trace_id, r.parent_span}, r.time);
        if (!inserted) it->second = std::min(it->second, r.time);
      }
      continue;
    }
    OpTimeline& t = ops[key_of(r.op)];
    t.op = r.op;
    if (r.trace_id != 0 && t.trace_id == 0) t.trace_id = r.trace_id;
    t.records.push_back(r);
    switch (r.span_event()) {
      case obs::SpanEvent::ClientSend:
        if (t.client_send == 0 || r.time < t.client_send) {
          t.client_send = r.time;
          t.client_span = r.span_id;
        }
        break;
      case obs::SpanEvent::ClientRetransmit:
        ++t.retransmits;
        break;
      case obs::SpanEvent::TotemDeliver: {
        ++t.deliver_counts[r.node];
        if (t.first_deliver == 0 || r.time < t.first_deliver) {
          t.first_deliver = r.time;
        }
        auto [dit, dnew] = t.first_deliver_at.try_emplace(r.node, r.time);
        if (!dnew) dit->second = std::min(dit->second, r.time);
        if (t.group.empty()) {
          const std::string detail = r.detail_str();
          const auto pos = detail.find("target=");
          if (pos != std::string::npos) t.group = detail.substr(pos + 7);
        }
        std::uint64_t epoch = 0, seq = 0;
        if (t.carrier_seq == 0 &&
            parse_carrier(r.detail_str(), epoch, seq)) {
          t.carrier_epoch = epoch;
          t.carrier_seq = seq;
        }
        break;
      }
      case obs::SpanEvent::ExecStart: {
        ++t.exec_starts[r.node];
        auto [eit, enew] =
            t.exec_span.try_emplace(r.node, std::make_pair(r.time, r.time));
        if (!enew) {
          eit->second.first = std::min(eit->second.first, r.time);
          eit->second.second = std::max(eit->second.second, r.time);
        }
        break;
      }
      case obs::SpanEvent::ReplyDeliver:
        if (t.reply_deliver == 0 || r.time < t.reply_deliver) {
          t.reply_deliver = r.time;
        }
        break;
      case obs::SpanEvent::DuplicateDropped:
      case obs::SpanEvent::DuplicateReplyResent:
      case obs::SpanEvent::SendSuppressed:
      case obs::SpanEvent::ResponseSuppressed:
        ++t.suppressions;
        break;
      case obs::SpanEvent::FailoverRetry:
        t.failover_retry = true;
        break;
      case obs::SpanEvent::ReadSkipped:
        ++t.read_skips;
        break;
      case obs::SpanEvent::ResyncDeferred:
        ++t.resync_defers;
        break;
      default:
        break;
    }
  }

  timelines_.clear();
  timelines_.reserve(ops.size());
  for (auto& [key, t] : ops) {
    if (t.client_send != 0 && t.trace_id != 0) {
      auto it = token_visits.find({t.trace_id, t.client_span});
      if (it != token_visits.end()) t.first_order = it->second;
    }
    timelines_.push_back(std::move(t));
  }

  // Total-order sort: ordered operations by carrier coordinates, the rest
  // (never seen delivered) after them by their earliest record.
  std::stable_sort(
      timelines_.begin(), timelines_.end(),
      [](const OpTimeline& a, const OpTimeline& b) {
        const bool ao = a.carrier_seq != 0, bo = b.carrier_seq != 0;
        if (ao != bo) return ao;
        if (ao) {
          if (a.carrier_epoch != b.carrier_epoch) {
            return a.carrier_epoch < b.carrier_epoch;
          }
          if (a.carrier_seq != b.carrier_seq) {
            return a.carrier_seq < b.carrier_seq;
          }
        }
        const std::uint64_t at = a.records.empty() ? 0 : a.records[0].time;
        const std::uint64_t bt = b.records.empty() ? 0 : b.records[0].time;
        return at < bt;
      });
}

const std::vector<OpTimeline>& Analysis::timelines() {
  finalize();
  return timelines_;
}

std::string Analysis::timeline_report() {
  finalize();
  std::ostringstream os;
  os << "operations: " << timelines_.size() << " (records "
     << records_.size() << ", files " << files_ << ")\n";
  for (const OpTimeline& t : timelines_) {
    os << t.op.str();
    if (t.carrier_seq != 0) {
      os << " order=" << t.carrier_epoch << ':' << t.carrier_seq;
    }
    if (t.client_send != 0) os << " send=" << t.client_send;
    if (t.first_order != 0) os << " token=" << t.first_order;
    if (t.first_deliver != 0) os << " deliver=" << t.first_deliver;
    if (t.reply_deliver != 0) {
      os << " reply=" << t.reply_deliver;
      if (t.client_send != 0) {
        os << " rtt=" << t.reply_deliver - t.client_send;
      }
    }
    os << " execs=";
    bool first = true;
    os << '{';
    for (const auto& [node, count] : t.exec_starts) {
      if (!first) os << ' ';
      os << node << ':' << count;
      first = false;
    }
    os << '}';
    if (t.retransmits) os << " retrans=" << t.retransmits;
    if (t.suppressions) os << " suppressed=" << t.suppressions;
    if (t.read_skips) os << " read-skips=" << t.read_skips;
    if (t.resync_defers) os << " resync-defers=" << t.resync_defers;
    if (t.failover_retry) os << " failover-retry";
    os << '\n';
  }
  return os.str();
}

std::string Analysis::latency_report() {
  finalize();
  util::Summary to_order, to_deliver, to_reply, rtt;
  for (const OpTimeline& t : timelines_) {
    if (t.client_send == 0) continue;
    if (t.first_order >= t.client_send && t.first_order != 0) {
      to_order.add(static_cast<double>(t.first_order - t.client_send));
    }
    if (t.first_deliver != 0 && t.first_order != 0 &&
        t.first_deliver >= t.first_order) {
      to_deliver.add(static_cast<double>(t.first_deliver - t.first_order));
    }
    if (t.reply_deliver != 0 && t.first_deliver != 0 &&
        t.reply_deliver >= t.first_deliver) {
      to_reply.add(static_cast<double>(t.reply_deliver - t.first_deliver));
    }
    if (t.reply_deliver != 0 && t.reply_deliver >= t.client_send) {
      rtt.add(static_cast<double>(t.reply_deliver - t.client_send));
    }
  }
  std::ostringstream os;
  os << "per-stage latency (simulated us, " << timelines_.size()
     << " operations)\n";
  os << "  client->order    " << to_order.describe() << '\n';
  os << "  order->deliver   " << to_deliver.describe() << '\n';
  os << "  deliver->reply   " << to_reply.describe() << '\n';
  os << "  client->reply    " << rtt.describe() << '\n';
  return os.str();
}

std::vector<AuditViolation> Analysis::audit() {
  finalize();
  std::vector<AuditViolation> out;

  // State-transfer moments per (group, node): a replica that resynced
  // discarded whatever tentative history it held (the paper's partitioned
  // operation), so executions and deliveries on opposite sides of a
  // transfer belong to different state lineages and must not be judged as
  // one. Spawned replicas likewise bootstrap through a transfer, and a
  // disk recovery is the same boundary in time instead of space: the
  // journal replay re-runs pre-crash deliveries under the restarted
  // process, so a repeat straddling RecoveryBegin/RecoveryEnd is the tape
  // being replayed, not a duplicate.
  std::map<std::pair<std::string, std::uint32_t>, std::vector<std::uint64_t>>
      transfers;
  for (const FlightRecord& r : records_) {
    if (r.stream != FlightRecord::Stream::Journal) continue;
    if (r.journal_kind() != obs::EventKind::StateTransferBegin &&
        r.journal_kind() != obs::EventKind::StateTransferEnd &&
        r.journal_kind() != obs::EventKind::RecoveryBegin &&
        r.journal_kind() != obs::EventKind::RecoveryEnd) {
      continue;
    }
    transfers[{first_token(r.detail_str()), r.node}].push_back(r.time);
  }
  const auto transfer_between = [&transfers](const std::string& group,
                                             std::uint32_t node,
                                             std::uint64_t lo,
                                             std::uint64_t hi) {
    auto it = transfers.find({group, node});
    if (it == transfers.end()) return false;
    for (std::uint64_t tt : it->second) {
      if (tt >= lo && tt <= hi) return true;
    }
    return false;
  };

  for (const OpTimeline& t : timelines_) {
    // Every invoked operation completes: a recorded client send must have a
    // recorded reply delivery (exactly-once includes at-least-once).
    if (t.client_send != 0 && t.reply_deliver == 0) {
      out.push_back({"lost-op",
                     "operation " + t.op.str() +
                         " was invoked but no reply delivery was recorded"});
    }
    // ...and at-most-once: no node may start executing one operation twice.
    // A repeat separated by a state transfer at that node is a partitioned
    // operation, not a violation: the first run was tentative in a secondary
    // component and the resync discarded it before the merged history
    // re-executed.
    for (const auto& [node, count] : t.exec_starts) {
      if (count > 1) {
        const auto span_it = t.exec_span.find(node);
        if (span_it != t.exec_span.end() &&
            transfer_between(t.group, node, span_it->second.first,
                             span_it->second.second)) {
          continue;
        }
        out.push_back({"duplicate-execution",
                       "operation " + t.op.str() + " started executing " +
                           std::to_string(count) + " times on node " +
                           std::to_string(node)});
      }
    }
    // Every retry maps to a suppressed duplicate: when a retransmitted
    // operation was visibly delivered more than once at an executing node,
    // some duplicate-suppression record must explain why it ran once. A
    // passive backup's deliberate skip of a read-only delivery counts — it
    // explains the extra delivery at a node that later executed as primary —
    // as does an unsynced replica's deferral of a delivery it never acted on.
    // A state transfer between a node's earliest delivery and its last
    // execution also explains an unmatched extra delivery: the node received
    // the first copy before it was synced (or before its replica existed),
    // and only the post-transfer lineage acted on the retry.
    if (t.retransmits > 0 && t.suppressions == 0 && t.read_skips == 0 &&
        t.resync_defers == 0) {
      for (const auto& [node, count] : t.exec_starts) {
        if (count > 0 && t.deliver_counts.count(node) &&
            t.deliver_counts.at(node) >= 2) {
          const auto span_it = t.exec_span.find(node);
          const auto del_it = t.first_deliver_at.find(node);
          if (span_it != t.exec_span.end() &&
              del_it != t.first_deliver_at.end() &&
              transfer_between(t.group, node, del_it->second,
                               span_it->second.second)) {
            continue;
          }
          out.push_back(
              {"unsuppressed-retry",
               "operation " + t.op.str() + " was retransmitted and node " +
                   std::to_string(node) +
                   " saw multiple deliveries, but no suppression was "
                   "recorded"});
          break;
        }
      }
    }
  }

  // Membership views converge: for each group, the final view two live
  // nodes installed must agree whenever each believes the other is a
  // member. (A crashed node's stale view legitimately disagrees — but then
  // the survivors' views no longer contain it.)
  struct LastView {
    std::uint64_t time = 0;
    std::vector<std::uint32_t> members;
  };
  std::map<std::string, std::map<std::uint32_t, LastView>> views;
  std::map<std::string, std::map<std::string, std::size_t>> convictions;
  for (const FlightRecord& r : records_) {
    if (r.stream != FlightRecord::Stream::Journal) continue;
    const std::string detail = r.detail_str();
    if (r.journal_kind() == obs::EventKind::GroupViewInstalled) {
      std::vector<std::uint32_t> members;
      if (!parse_members(detail, members)) continue;
      LastView& lv = views[first_token(detail)][r.node];
      if (r.time >= lv.time) {
        lv.time = r.time;
        lv.members = std::move(members);
      }
    } else if (r.journal_kind() == obs::EventKind::DivergenceDetected) {
      ++convictions[first_token(detail)][detail];
    }
  }
  for (const auto& [group, per_node] : views) {
    for (auto a = per_node.begin(); a != per_node.end(); ++a) {
      for (auto b = std::next(a); b != per_node.end(); ++b) {
        const auto& ma = a->second.members;
        const auto& mb = b->second.members;
        const bool mutual =
            std::find(ma.begin(), ma.end(), b->first) != ma.end() &&
            std::find(mb.begin(), mb.end(), a->first) != mb.end();
        if (mutual && ma != mb) {
          out.push_back({"view-divergence",
                         "group " + group + ": node " +
                             std::to_string(a->first) + " final view " +
                             members_str(ma) + " != node " +
                             std::to_string(b->first) + " view " +
                             members_str(mb)});
        }
      }
    }
  }

  // Divergence convictions are themselves consistent: the oracle's verdict
  // rode the total order, so every node must convict the same operation
  // with the same report. (A conviction alone is the oracle doing its job,
  // not an audit failure.)
  for (const auto& [group, details] : convictions) {
    if (details.size() > 1) {
      std::string summary;
      for (const auto& [detail, count] : details) {
        if (!summary.empty()) summary += " vs ";
        summary += '"' + detail + '"';
      }
      out.push_back({"divergence-inconsistent",
                     "group " + group +
                         ": nodes convicted different reports: " + summary});
    }
  }

  // Recovered state matches what was durably checkpointed. Every
  // CheckpointCut of the same (group, version) must carry the same digest
  // on every node — the cut rides the agreed sequence, so divergent cut
  // digests mean the replicas had already split before the crash. And a
  // RecoveryLoaded must agree with the cut it restored from: the engine
  // stamps " mismatch" into the detail when its own re-digest disagrees,
  // and we cross-check the loaded digest against the recorded cut besides,
  // in case the disk image was swapped between runs.
  std::map<std::pair<std::string, std::string>, std::pair<std::string, std::uint32_t>>
      cut_digests;  // (group, version) -> (digest, first node that cut it)
  for (const FlightRecord& r : records_) {
    if (r.stream != FlightRecord::Stream::Journal) continue;
    const auto kind = r.journal_kind();
    if (kind != obs::EventKind::CheckpointCut &&
        kind != obs::EventKind::RecoveryLoaded) {
      continue;
    }
    const std::string detail = r.detail_str();
    const std::string group = first_token(detail);
    const std::string version = parse_field(detail, "version");
    const std::string digest = parse_field(detail, "digest");
    if (kind == obs::EventKind::CheckpointCut) {
      if (version.empty() || digest.empty()) continue;
      auto [it, inserted] =
          cut_digests.try_emplace({group, version}, digest, r.node);
      if (!inserted && it->second.first != digest) {
        out.push_back({"checkpoint-divergence",
                       "group " + group + " version " + version +
                           ": node " + std::to_string(r.node) +
                           " cut digest " + digest + " but node " +
                           std::to_string(it->second.second) + " cut " +
                           it->second.first});
      }
    } else {
      if (detail.find(" mismatch") != std::string::npos) {
        out.push_back({"recovery-digest",
                       "group " + group + ": node " +
                           std::to_string(r.node) +
                           " loaded a checkpoint whose digest did not match "
                           "its recovered state (" + detail + ")"});
        continue;
      }
      if (version.empty() || digest.empty()) continue;
      auto it = cut_digests.find({group, version});
      if (it != cut_digests.end() && it->second.first != digest) {
        out.push_back({"recovery-digest",
                       "group " + group + " version " + version +
                           ": node " + std::to_string(r.node) + " loaded " +
                           digest + " but the recorded cut was " +
                           it->second.first});
      }
    }
  }

  // Stamp every violation with the run seed so a soak failure is
  // self-describing: the report alone names the schedule to replay.
  if (has_seed_) {
    for (AuditViolation& v : out) {
      v.detail = "[seed " + std::to_string(seed_) + "] " + v.detail;
    }
  }

  return out;
}

}  // namespace eternal::obsctl

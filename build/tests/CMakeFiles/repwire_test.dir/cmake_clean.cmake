file(REMOVE_RECURSE
  "CMakeFiles/repwire_test.dir/repwire_test.cpp.o"
  "CMakeFiles/repwire_test.dir/repwire_test.cpp.o.d"
  "repwire_test"
  "repwire_test.pdb"
  "repwire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repwire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for repwire_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rep_test.dir/rep_test.cpp.o"
  "CMakeFiles/rep_test.dir/rep_test.cpp.o.d"
  "rep_test"
  "rep_test.pdb"
  "rep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

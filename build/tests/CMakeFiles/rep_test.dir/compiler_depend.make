# Empty compiler generated dependencies file for rep_test.
# This may be replaced when dependencies are built.

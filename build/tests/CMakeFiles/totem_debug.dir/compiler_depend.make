# Empty compiler generated dependencies file for totem_debug.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/totem_debug.dir/totem_debug.cpp.o"
  "CMakeFiles/totem_debug.dir/totem_debug.cpp.o.d"
  "totem_debug"
  "totem_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/totem_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rep_debug.dir/rep_debug.cpp.o"
  "CMakeFiles/rep_debug.dir/rep_debug.cpp.o.d"
  "rep_debug"
  "rep_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rep_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rep_debug.
# This may be replaced when dependencies are built.

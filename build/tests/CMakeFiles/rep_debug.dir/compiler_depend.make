# Empty compiler generated dependencies file for rep_debug.
# This may be replaced when dependencies are built.

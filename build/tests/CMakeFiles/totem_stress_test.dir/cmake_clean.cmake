file(REMOVE_RECURSE
  "CMakeFiles/totem_stress_test.dir/totem_stress_test.cpp.o"
  "CMakeFiles/totem_stress_test.dir/totem_stress_test.cpp.o.d"
  "totem_stress_test"
  "totem_stress_test.pdb"
  "totem_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/totem_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

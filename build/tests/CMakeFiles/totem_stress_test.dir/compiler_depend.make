# Empty compiler generated dependencies file for totem_stress_test.
# This may be replaced when dependencies are built.

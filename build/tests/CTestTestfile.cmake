# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/cdr_test[1]_include.cmake")
include("/root/repo/build/tests/giop_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/totem_test[1]_include.cmake")
include("/root/repo/build/tests/totem_stress_test[1]_include.cmake")
include("/root/repo/build/tests/rep_test[1]_include.cmake")
include("/root/repo/build/tests/ft_test[1]_include.cmake")
include("/root/repo/build/tests/orb_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/repwire_test[1]_include.cmake")

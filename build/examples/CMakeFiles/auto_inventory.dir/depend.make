# Empty dependencies file for auto_inventory.
# This may be replaced when dependencies are built.

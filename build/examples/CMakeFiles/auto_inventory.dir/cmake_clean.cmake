file(REMOVE_RECURSE
  "CMakeFiles/auto_inventory.dir/auto_inventory.cpp.o"
  "CMakeFiles/auto_inventory.dir/auto_inventory.cpp.o.d"
  "auto_inventory"
  "auto_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bank_nested.dir/bank_nested.cpp.o"
  "CMakeFiles/bank_nested.dir/bank_nested.cpp.o.d"
  "bank_nested"
  "bank_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bank_nested.
# This may be replaced when dependencies are built.

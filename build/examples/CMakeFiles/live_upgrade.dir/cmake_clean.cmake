file(REMOVE_RECURSE
  "CMakeFiles/live_upgrade.dir/live_upgrade.cpp.o"
  "CMakeFiles/live_upgrade.dir/live_upgrade.cpp.o.d"
  "live_upgrade"
  "live_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_totem.dir/bench_totem.cpp.o"
  "CMakeFiles/bench_totem.dir/bench_totem.cpp.o.d"
  "bench_totem"
  "bench_totem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_totem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_totem.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_duplicates.cpp" "bench/CMakeFiles/bench_duplicates.dir/bench_duplicates.cpp.o" "gcc" "bench/CMakeFiles/bench_duplicates.dir/bench_duplicates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ft/CMakeFiles/eternal_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/eternal_app.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/eternal_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/rep/CMakeFiles/eternal_rep.dir/DependInfo.cmake"
  "/root/repo/build/src/giop/CMakeFiles/eternal_giop.dir/DependInfo.cmake"
  "/root/repo/build/src/totem/CMakeFiles/eternal_totem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eternal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/eternal_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eternal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_duplicates.dir/bench_duplicates.cpp.o"
  "CMakeFiles/bench_duplicates.dir/bench_duplicates.cpp.o.d"
  "bench_duplicates"
  "bench_duplicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_duplicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

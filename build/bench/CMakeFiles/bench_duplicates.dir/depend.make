# Empty dependencies file for bench_duplicates.
# This may be replaced when dependencies are built.

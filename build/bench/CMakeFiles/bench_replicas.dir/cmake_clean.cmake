file(REMOVE_RECURSE
  "CMakeFiles/bench_replicas.dir/bench_replicas.cpp.o"
  "CMakeFiles/bench_replicas.dir/bench_replicas.cpp.o.d"
  "bench_replicas"
  "bench_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_replicas.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_state_tiers.
# This may be replaced when dependencies are built.

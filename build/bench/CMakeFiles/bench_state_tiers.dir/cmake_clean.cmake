file(REMOVE_RECURSE
  "CMakeFiles/bench_state_tiers.dir/bench_state_tiers.cpp.o"
  "CMakeFiles/bench_state_tiers.dir/bench_state_tiers.cpp.o.d"
  "bench_state_tiers"
  "bench_state_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_state_transfer.dir/bench_state_transfer.cpp.o"
  "CMakeFiles/bench_state_transfer.dir/bench_state_transfer.cpp.o.d"
  "bench_state_transfer"
  "bench_state_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

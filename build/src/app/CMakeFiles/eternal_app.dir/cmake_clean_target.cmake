file(REMOVE_RECURSE
  "libeternal_app.a"
)

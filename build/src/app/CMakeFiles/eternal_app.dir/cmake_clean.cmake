file(REMOVE_RECURSE
  "CMakeFiles/eternal_app.dir/servants.cpp.o"
  "CMakeFiles/eternal_app.dir/servants.cpp.o.d"
  "libeternal_app.a"
  "libeternal_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

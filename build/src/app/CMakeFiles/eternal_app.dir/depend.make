# Empty dependencies file for eternal_app.
# This may be replaced when dependencies are built.

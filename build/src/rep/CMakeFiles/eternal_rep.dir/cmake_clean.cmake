file(REMOVE_RECURSE
  "CMakeFiles/eternal_rep.dir/client.cpp.o"
  "CMakeFiles/eternal_rep.dir/client.cpp.o.d"
  "CMakeFiles/eternal_rep.dir/domain.cpp.o"
  "CMakeFiles/eternal_rep.dir/domain.cpp.o.d"
  "CMakeFiles/eternal_rep.dir/engine.cpp.o"
  "CMakeFiles/eternal_rep.dir/engine.cpp.o.d"
  "CMakeFiles/eternal_rep.dir/replica.cpp.o"
  "CMakeFiles/eternal_rep.dir/replica.cpp.o.d"
  "CMakeFiles/eternal_rep.dir/wire.cpp.o"
  "CMakeFiles/eternal_rep.dir/wire.cpp.o.d"
  "libeternal_rep.a"
  "libeternal_rep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_rep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

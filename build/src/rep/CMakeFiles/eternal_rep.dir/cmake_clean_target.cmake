file(REMOVE_RECURSE
  "libeternal_rep.a"
)

# Empty dependencies file for eternal_rep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libeternal_util.a"
)

# Empty dependencies file for eternal_util.
# This may be replaced when dependencies are built.

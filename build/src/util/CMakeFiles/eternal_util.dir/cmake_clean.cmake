file(REMOVE_RECURSE
  "CMakeFiles/eternal_util.dir/log.cpp.o"
  "CMakeFiles/eternal_util.dir/log.cpp.o.d"
  "CMakeFiles/eternal_util.dir/prng.cpp.o"
  "CMakeFiles/eternal_util.dir/prng.cpp.o.d"
  "CMakeFiles/eternal_util.dir/stats.cpp.o"
  "CMakeFiles/eternal_util.dir/stats.cpp.o.d"
  "libeternal_util.a"
  "libeternal_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for eternal_orb.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for eternal_ft.
# This may be replaced when dependencies are built.

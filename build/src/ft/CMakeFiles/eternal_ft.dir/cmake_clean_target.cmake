file(REMOVE_RECURSE
  "libeternal_ft.a"
)

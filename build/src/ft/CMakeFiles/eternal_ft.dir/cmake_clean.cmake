file(REMOVE_RECURSE
  "CMakeFiles/eternal_ft.dir/fault_detector.cpp.o"
  "CMakeFiles/eternal_ft.dir/fault_detector.cpp.o.d"
  "CMakeFiles/eternal_ft.dir/properties.cpp.o"
  "CMakeFiles/eternal_ft.dir/properties.cpp.o.d"
  "CMakeFiles/eternal_ft.dir/replication_manager.cpp.o"
  "CMakeFiles/eternal_ft.dir/replication_manager.cpp.o.d"
  "libeternal_ft.a"
  "libeternal_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/eternal_sim.dir/fault_plan.cpp.o"
  "CMakeFiles/eternal_sim.dir/fault_plan.cpp.o.d"
  "CMakeFiles/eternal_sim.dir/network.cpp.o"
  "CMakeFiles/eternal_sim.dir/network.cpp.o.d"
  "CMakeFiles/eternal_sim.dir/simulation.cpp.o"
  "CMakeFiles/eternal_sim.dir/simulation.cpp.o.d"
  "libeternal_sim.a"
  "libeternal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eternal_sim.
# This may be replaced when dependencies are built.

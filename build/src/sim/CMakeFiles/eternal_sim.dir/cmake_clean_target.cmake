file(REMOVE_RECURSE
  "libeternal_sim.a"
)

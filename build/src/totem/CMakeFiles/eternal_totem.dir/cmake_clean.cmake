file(REMOVE_RECURSE
  "CMakeFiles/eternal_totem.dir/fabric.cpp.o"
  "CMakeFiles/eternal_totem.dir/fabric.cpp.o.d"
  "CMakeFiles/eternal_totem.dir/group.cpp.o"
  "CMakeFiles/eternal_totem.dir/group.cpp.o.d"
  "CMakeFiles/eternal_totem.dir/node.cpp.o"
  "CMakeFiles/eternal_totem.dir/node.cpp.o.d"
  "CMakeFiles/eternal_totem.dir/wire.cpp.o"
  "CMakeFiles/eternal_totem.dir/wire.cpp.o.d"
  "libeternal_totem.a"
  "libeternal_totem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_totem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/eternal_giop.dir/giop.cpp.o"
  "CMakeFiles/eternal_giop.dir/giop.cpp.o.d"
  "libeternal_giop.a"
  "libeternal_giop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_giop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeternal_giop.a"
)

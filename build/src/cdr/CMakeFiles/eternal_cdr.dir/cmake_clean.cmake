file(REMOVE_RECURSE
  "CMakeFiles/eternal_cdr.dir/cdr.cpp.o"
  "CMakeFiles/eternal_cdr.dir/cdr.cpp.o.d"
  "libeternal_cdr.a"
  "libeternal_cdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eternal_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eternal_cdr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libeternal_cdr.a"
)
